// Package machine assembles the engine, partitioner and lowerings into
// the paper's two machine models and the serial baseline used for
// speedup. A Suite caches the lowered programs for one trace so sweeps
// can run many configurations cheaply.
package machine

import (
	"fmt"
	"sync"

	"daesim/internal/engine"
	"daesim/internal/isa"
	"daesim/internal/lower"
	"daesim/internal/memsys"
	"daesim/internal/partition"
	"daesim/internal/trace"
)

// Kind identifies a machine model.
type Kind uint8

const (
	// DM is the access decoupled machine.
	DM Kind = iota
	// SWSM is the single-window superscalar machine.
	SWSM
)

func (k Kind) String() string {
	switch k {
	case DM:
		return "DM"
	case SWSM:
		return "SWSM"
	default:
		return fmt.Sprintf("machine(%d)", uint8(k))
	}
}

// Params configures one simulation run. The zero value plus a Window is
// usable: all other fields default to the paper's configuration.
type Params struct {
	// Window is the instruction window size: per unit on the DM (AU and DU
	// each get Window slots), total on the SWSM. Zero or negative means
	// unlimited.
	Window int
	// AUWindow/DUWindow override the per-unit windows on the DM when > 0.
	AUWindow, DUWindow int
	// MD is the memory differential in cycles.
	MD int
	// FPLat and CopyLat override the default latencies when > 0.
	FPLat, CopyLat int
	// AUWidth, DUWidth and Width override the issue widths when > 0
	// (defaults 4, 5 and 9).
	AUWidth, DUWidth, Width int
	// DispatchWidth overrides per-core dispatch width when > 0 (default:
	// same as issue width).
	DispatchWidth int
	// MemQueue bounds the number of outstanding memory fills — the
	// capacity of the decoupled memory (DM) or prefetch buffer (SWSM),
	// which in the original machines were finite queues. Zero selects the
	// default QueueFactor×Window (unlimited when the window is unlimited);
	// Unbounded disables the limit; any positive value is used directly.
	MemQueue int
	// Mem selects a custom memory model and overrides MemQueue; nil uses
	// the fixed differential plus the MemQueue bound.
	//daelint:unwired in-process interface, not serializable: ToParams rejects it and CacheKey refuses to cache it
	Mem engine.MemModel
	// CollectESW enables effective-single-window statistics.
	CollectESW bool
	// HoldSendSlots makes sends occupy window slots until their fill
	// returns (ablation A3: removes fire-and-forget slippage).
	HoldSendSlots bool
	// Retire selects the window-slot reclamation policy. The zero value
	// (RetireAuto) resolves to the machine default: in-order (ROB-style)
	// on both machines — the mid-90s machines the paper abstracts
	// reclaimed slots through reorder buffers (SWSM) and per-unit FIFO
	// queues (DM/PIPE/WM), and symmetric accounting is what restores the
	// paper's C2 large-window ordering (EXPERIMENTS.md). RetireAtComplete
	// forces the older free-at-completion accounting (ablation A6).
	Retire RetirePolicy
}

// RetirePolicy selects how window slots are reclaimed.
type RetirePolicy uint8

const (
	// RetireAuto picks the machine default: in-order on both machines.
	RetireAuto RetirePolicy = iota
	// RetireAtComplete frees a slot as soon as its op completes.
	RetireAtComplete
	// RetireInOrder frees slots in program order (reorder-buffer style):
	// a completed op's slot is reclaimed only once every older op in the
	// same core has completed.
	RetireInOrder
)

func (r RetirePolicy) String() string {
	switch r {
	case RetireAuto:
		return "auto"
	case RetireAtComplete:
		return "at-complete"
	case RetireInOrder:
		return "in-order"
	default:
		return fmt.Sprintf("retire(%d)", uint8(r))
	}
}

// ResolveRetire maps a policy to the concrete policy the engine runs:
// RetireAuto becomes the machine default. Resolution is kind-independent
// — both machines default to in-order reclamation (their per-unit FIFO
// queues and reorder buffers) — so caches may canonicalize keys with it.
func ResolveRetire(r RetirePolicy) RetirePolicy {
	if r == RetireAtComplete {
		return RetireAtComplete
	}
	return RetireInOrder
}

// retireInOrder resolves the policy (see ResolveRetire).
func (p Params) retireInOrder() bool {
	return ResolveRetire(p.Retire) == RetireInOrder
}

// Unbounded disables the MemQueue outstanding-fill limit.
const Unbounded = -1

// QueueFactor scales the default decoupled-memory / prefetch-buffer
// capacity with the window size: a machine with W-slot windows gets a
// QueueFactor×W entry queue. The paper idealizes the buffers but the
// machines it abstracts (PIPE, WM) used finite queues; scaling with the
// window keeps small configurations from hiding latency through
// unbounded run-ahead.
const QueueFactor = 2

// queueModel returns the memory model implied by the parameters.
func (p Params) queueModel() (engine.MemModel, error) {
	if p.Mem != nil {
		return p.Mem, nil
	}
	switch {
	case p.MemQueue == Unbounded:
		return nil, nil
	case p.MemQueue > 0:
		return memsys.NewOutstanding(int64(p.Timing().MD), p.MemQueue)
	case p.MemQueue == 0:
		if p.Window <= 0 {
			return nil, nil // unlimited window: unlimited queue
		}
		return memsys.NewOutstanding(int64(p.Timing().MD), QueueFactor*p.Window)
	default:
		return nil, fmt.Errorf("machine: invalid MemQueue %d", p.MemQueue)
	}
}

// Timing returns the isa.Timing with defaults applied.
func (p Params) Timing() isa.Timing {
	t := isa.Timing{MD: p.MD, FPLat: p.FPLat, CopyLat: p.CopyLat}
	if t.FPLat == 0 {
		t.FPLat = isa.DefaultFPLat
	}
	if t.CopyLat == 0 {
		t.CopyLat = isa.DefaultCopyLat
	}
	return t
}

func (p Params) auWidth() int {
	if p.AUWidth > 0 {
		return p.AUWidth
	}
	return isa.DefaultAUWidth
}

func (p Params) duWidth() int {
	if p.DUWidth > 0 {
		return p.DUWidth
	}
	return isa.DefaultDUWidth
}

func (p Params) swsmWidth() int {
	if p.Width > 0 {
		return p.Width
	}
	return isa.DefaultSWSMWidth
}

func (p Params) auWindow() int {
	if p.AUWindow > 0 {
		return p.AUWindow
	}
	return p.Window
}

func (p Params) duWindow() int {
	if p.DUWindow > 0 {
		return p.DUWindow
	}
	return p.Window
}

// Suite holds the lowered programs for one trace under one partition
// policy. Build once, run many configurations.
type Suite struct {
	// Trace is the source trace.
	Trace *trace.Trace
	// DM is the decoupled-machine lowering.
	DM *lower.DMResult
	// SWSM is the superscalar lowering.
	SWSM *engine.Program

	// fingerprint memoization (see Fingerprint).
	fpOnce sync.Once
	fp     string
}

// NewSuite lowers tr for both machines using the given partition policy.
func NewSuite(tr *trace.Trace, pol partition.Policy) (*Suite, error) {
	dm, err := lower.DM(tr, pol)
	if err != nil {
		return nil, fmt.Errorf("machine: lowering DM: %w", err)
	}
	sw, err := lower.SWSM(tr)
	if err != nil {
		return nil, fmt.Errorf("machine: lowering SWSM: %w", err)
	}
	return &Suite{Trace: tr, DM: dm, SWSM: sw}, nil
}

// Run executes the given machine kind under p, drawing a reusable
// engine scratch context from the shared pool.
func (s *Suite) Run(kind Kind, p Params) (*engine.Result, error) {
	return s.RunWith(nil, kind, p)
}

// RunWith executes the given machine kind under p on sim's reusable
// scratch. A nil sim draws from the engine's shared pool. Callers that
// run many configurations on a dedicated goroutine (sweep workers,
// equivalent-window searches) should hold their own engine.Sim so
// repeated runs allocate nothing beyond the Results.
func (s *Suite) RunWith(sim *engine.Sim, kind Kind, p Params) (*engine.Result, error) {
	switch kind {
	case DM:
		return s.RunDMWith(sim, p)
	case SWSM:
		return s.RunSWSMWith(sim, p)
	default:
		return nil, fmt.Errorf("machine: unknown kind %v", kind)
	}
}

// dmConfig materializes the engine configuration for the decoupled
// machine.
func (p Params) dmConfig() (engine.Config, error) {
	mem, err := p.queueModel()
	if err != nil {
		return engine.Config{}, err
	}
	return engine.Config{
		Timing: p.Timing(),
		Cores: []isa.CoreConfig{
			{Window: p.auWindow(), IssueWidth: p.auWidth(), DispatchWidth: p.DispatchWidth},
			{Window: p.duWindow(), IssueWidth: p.duWidth(), DispatchWidth: p.DispatchWidth},
		},
		Mem:           mem,
		CollectESW:    p.CollectESW,
		HoldSendSlots: p.HoldSendSlots,
		RetireInOrder: p.retireInOrder(),
	}, nil
}

// swsmConfig materializes the engine configuration for the superscalar
// machine.
func (p Params) swsmConfig() (engine.Config, error) {
	mem, err := p.queueModel()
	if err != nil {
		return engine.Config{}, err
	}
	return engine.Config{
		Timing: p.Timing(),
		Cores: []isa.CoreConfig{
			{Window: p.Window, IssueWidth: p.swsmWidth(), DispatchWidth: p.DispatchWidth},
		},
		Mem:           mem,
		CollectESW:    p.CollectESW,
		HoldSendSlots: p.HoldSendSlots,
		RetireInOrder: p.retireInOrder(),
	}, nil
}

// Config materializes the engine configuration p implies for a machine
// kind — exactly what Run hands the engine. Exported for differential
// harnesses (FuzzWorkgenDifferential) that replay the same setup
// through engine.ReferenceRun; each call constructs a fresh memory
// model, so two configs never share queue state.
func (p Params) Config(kind Kind) (engine.Config, error) {
	switch kind {
	case DM:
		return p.dmConfig()
	case SWSM:
		return p.swsmConfig()
	default:
		return engine.Config{}, fmt.Errorf("machine: unknown kind %v", kind)
	}
}

// Program returns the lowered program Run executes for kind.
func (s *Suite) Program(kind Kind) *engine.Program {
	if kind == DM {
		return s.DM.Program
	}
	return s.SWSM
}

// RunDM executes the decoupled machine under p.
func (s *Suite) RunDM(p Params) (*engine.Result, error) { return s.RunDMWith(nil, p) }

// RunDMWith executes the decoupled machine under p on sim's scratch
// (nil draws from the shared pool).
func (s *Suite) RunDMWith(sim *engine.Sim, p Params) (*engine.Result, error) {
	cfg, err := p.dmConfig()
	if err != nil {
		return nil, err
	}
	if sim == nil {
		return engine.Run(s.DM.Program, cfg)
	}
	return sim.Run(s.DM.Program, cfg)
}

// RunSWSM executes the superscalar machine under p.
func (s *Suite) RunSWSM(p Params) (*engine.Result, error) { return s.RunSWSMWith(nil, p) }

// RunSWSMWith executes the superscalar machine under p on sim's scratch
// (nil draws from the shared pool).
func (s *Suite) RunSWSMWith(sim *engine.Sim, p Params) (*engine.Result, error) {
	cfg, err := p.swsmConfig()
	if err != nil {
		return nil, err
	}
	if sim == nil {
		return engine.Run(s.SWSM, cfg)
	}
	return sim.Run(s.SWSM, cfg)
}

// SerialCycles returns the execution time of tr on the serial reference
// machine used as the speedup baseline: a single-issue, non-overlapping
// processor where every instruction completes before the next begins.
// Integer ops cost 1 cycle, FP ops FPLat, loads MD+1 (the differential
// plus the access cycle) and stores 1 (retired through a store buffer).
func SerialCycles(tr *trace.Trace, tm isa.Timing) int64 {
	var total int64
	for i := range tr.Instrs {
		switch tr.Instrs[i].Class {
		case isa.IntALU, isa.Store:
			total++
		case isa.FPALU:
			total += int64(tm.FPLat)
		case isa.Load:
			total += int64(tm.MD) + 1
		}
	}
	return total
}

// PerfectCycles returns the execution time of the machine with perfect
// latency hiding: the same machine with MD forced to zero, so every
// memory access perceives a single-cycle (buffer-request) latency. This
// is the T_perfect of the paper's LHE definition.
func (s *Suite) PerfectCycles(kind Kind, p Params) (int64, error) {
	p.MD = 0
	r, err := s.Run(kind, p)
	if err != nil {
		return 0, err
	}
	return r.Cycles, nil
}
