package machine

import (
	"testing"

	"daesim/internal/engine"
	"daesim/internal/isa"
	"daesim/internal/kernel"
	"daesim/internal/partition"
	"daesim/internal/trace"
)

// testTrace builds a small streaming kernel exercising both machines.
func testTrace() *trace.Trace {
	b := kernel.New("m")
	arr := b.Array("a", 512, 8)
	for i := 0; i < 64; i++ {
		base := b.Int()
		v := b.Load(arr, i, base)
		f := b.FPChain(2, v)
		b.Store(arr, 256+i, f, base)
	}
	return b.MustTrace()
}

func mustSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite(testTrace(), partition.Classic)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestKindString(t *testing.T) {
	if DM.String() != "DM" || SWSM.String() != "SWSM" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{Window: 32, MD: 60}
	tm := p.Timing()
	if tm.FPLat != isa.DefaultFPLat || tm.CopyLat != isa.DefaultCopyLat || tm.MD != 60 {
		t.Fatalf("timing defaults wrong: %+v", tm)
	}
	if p.auWidth() != isa.DefaultAUWidth || p.duWidth() != isa.DefaultDUWidth || p.swsmWidth() != isa.DefaultSWSMWidth {
		t.Fatal("width defaults wrong")
	}
	if p.auWindow() != 32 || p.duWindow() != 32 {
		t.Fatal("window defaults wrong")
	}
	p.AUWindow, p.DUWindow = 8, 16
	if p.auWindow() != 8 || p.duWindow() != 16 {
		t.Fatal("window overrides ignored")
	}
}

func TestRunBothKinds(t *testing.T) {
	s := mustSuite(t)
	for _, kind := range []Kind{DM, SWSM} {
		res, err := s.Run(kind, Params{Window: 16, MD: 30})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Cycles <= 0 {
			t.Fatalf("%v: no cycles", kind)
		}
	}
	if _, err := s.Run(Kind(7), Params{Window: 16}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestQueueModelSelection(t *testing.T) {
	// Default: window-scaled queue.
	m, err := Params{Window: 16, MD: 60}.queueModel()
	if err != nil || m == nil {
		t.Fatalf("default should produce a queue model: %v %v", m, err)
	}
	// Unlimited window: no queue.
	m, err = Params{Window: 0, MD: 60}.queueModel()
	if err != nil || m != nil {
		t.Fatalf("unlimited window should disable the queue: %v %v", m, err)
	}
	// Unbounded request.
	m, err = Params{Window: 16, MD: 60, MemQueue: Unbounded}.queueModel()
	if err != nil || m != nil {
		t.Fatalf("Unbounded should disable the queue: %v %v", m, err)
	}
	// Explicit capacity.
	m, err = Params{Window: 16, MD: 60, MemQueue: 5}.queueModel()
	if err != nil || m == nil {
		t.Fatalf("explicit capacity rejected: %v %v", m, err)
	}
	// Invalid.
	if _, err := (Params{Window: 16, MemQueue: -7}).queueModel(); err == nil {
		t.Fatal("invalid MemQueue accepted")
	}
}

func TestQueueBoundsHurtPerformance(t *testing.T) {
	s := mustSuite(t)
	tight, err := s.RunDM(Params{Window: 64, MD: 60, MemQueue: 2})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := s.RunDM(Params{Window: 64, MD: 60, MemQueue: Unbounded})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Cycles <= loose.Cycles {
		t.Fatalf("tight queue should be slower: %d vs %d", tight.Cycles, loose.Cycles)
	}
}

func TestSerialCycles(t *testing.T) {
	tr := &trace.Trace{Instrs: []trace.Instr{
		{Class: isa.IntALU},
		{Class: isa.Load, Addr: []int32{0}},
		{Class: isa.FPALU, Args: []int32{1}},
		{Class: isa.Store, Addr: []int32{0}, Args: []int32{2}},
	}}
	tm := isa.Timing{MD: 60, FPLat: 3, CopyLat: 1}
	// 1 + 61 + 3 + 1 = 66
	if got := SerialCycles(tr, tm); got != 66 {
		t.Fatalf("serial cycles = %d, want 66", got)
	}
	tm.MD = 0
	if got := SerialCycles(tr, tm); got != 6 {
		t.Fatalf("serial cycles md=0 = %d, want 6", got)
	}
}

func TestSerialSlowerThanMachines(t *testing.T) {
	s := mustSuite(t)
	for _, md := range []int{0, 30, 60} {
		serial := SerialCycles(s.Trace, Params{MD: md}.Timing())
		dm, err := s.RunDM(Params{Window: 64, MD: md})
		if err != nil {
			t.Fatal(err)
		}
		if dm.Cycles > serial {
			t.Errorf("md=%d: DM (%d) slower than serial (%d)", md, dm.Cycles, serial)
		}
	}
}

func TestPerfectCycles(t *testing.T) {
	s := mustSuite(t)
	perfect, err := s.PerfectCycles(DM, Params{Window: 32, MD: 60})
	if err != nil {
		t.Fatal(err)
	}
	md0, err := s.RunDM(Params{Window: 32, MD: 0})
	if err != nil {
		t.Fatal(err)
	}
	if perfect != md0.Cycles {
		t.Fatalf("perfect (%d) should equal md=0 run (%d)", perfect, md0.Cycles)
	}
}

func TestHoldSendSlotsNeverFaster(t *testing.T) {
	s := mustSuite(t)
	base, err := s.RunDM(Params{Window: 16, MD: 60})
	if err != nil {
		t.Fatal(err)
	}
	held, err := s.RunDM(Params{Window: 16, MD: 60, HoldSendSlots: true})
	if err != nil {
		t.Fatal(err)
	}
	if held.Cycles < base.Cycles {
		t.Fatalf("holding send slots should never help: %d vs %d", held.Cycles, base.Cycles)
	}
}

func TestCustomMemOverridesQueue(t *testing.T) {
	s := mustSuite(t)
	var mm countingMem
	if _, err := s.RunDM(Params{Window: 16, MD: 60, Mem: &mm}); err != nil {
		t.Fatal(err)
	}
	if mm.fills == 0 {
		t.Fatal("custom memory model not consulted")
	}
}

type countingMem struct{ fills int }

func (m *countingMem) RequestFill(addr uint64, sent int64) int64 { m.fills++; return sent + 10 }
func (m *countingMem) Consume(addr uint64, cycle int64)          {}
func (m *countingMem) Reset()                                    { m.fills = 0 }

var _ engine.MemModel = (*countingMem)(nil)
