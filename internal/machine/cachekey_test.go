package machine

import (
	"reflect"
	"strings"
	"testing"

	"daesim/internal/engine"
	"daesim/internal/kernel"
	"daesim/internal/partition"
)

// TestCacheKeyCoversAllParams pins Params' field list by name
// (daelint's schemaguard proves the encoding coverage statically; this
// is the runtime backstop). If this fails you added, removed or renamed
// a Params field: extend Params.CacheKey's canonical encoding to cover
// it, then update the list here. Skipping the encoding would silently
// alias distinct configurations in the persistent result cache.
func TestCacheKeyCoversAllParams(t *testing.T) {
	auditFields(t, reflect.TypeOf(Params{}), "CacheKey", []string{
		"Window", "AUWindow", "DUWindow", "MD", "FPLat", "CopyLat",
		"AUWidth", "DUWidth", "Width", "DispatchWidth", "MemQueue",
		"Mem", "CollectESW", "HoldSendSlots", "Retire",
	})
}

// TestFingerprintCoversAllOpFields pins engine.Op's field list the same
// way: Suite.Fingerprint hashes every Op field by hand, so a new field
// that can affect simulation results must be added to the hash (or the
// persistent store would alias suites differing only in that field).
func TestFingerprintCoversAllOpFields(t *testing.T) {
	auditFields(t, reflect.TypeOf(engine.Op{}), "Fingerprint", []string{
		"Kind", "Unit", "Srcs", "MemSrc", "Addr", "Orig",
	})
}

// auditFields fails naming the exact fields that drifted from the
// audited list.
func auditFields(t *testing.T, typ reflect.Type, encoder string, known []string) {
	t.Helper()
	have := map[string]bool{}
	for i := 0; i < typ.NumField(); i++ {
		have[typ.Field(i).Name] = true
	}
	audited := map[string]bool{}
	for _, n := range known {
		audited[n] = true
		if !have[n] {
			t.Errorf("%s.%s was audited but is no longer declared: update the audit list", typ.Name(), n)
		}
	}
	for i := 0; i < typ.NumField(); i++ {
		if n := typ.Field(i).Name; !audited[n] {
			t.Errorf("%s.%s is not covered by the %s audit: extend %s (or annotate it for daelint), then add it here", typ.Name(), n, encoder, encoder)
		}
	}
}

func TestCacheKeyDistinguishesEveryField(t *testing.T) {
	base := Params{Window: 64, MD: 60}
	variants := []Params{
		{Window: 65, MD: 60},
		{Window: 64, AUWindow: 32, MD: 60},
		{Window: 64, DUWindow: 32, MD: 60},
		{Window: 64, MD: 61},
		{Window: 64, MD: 60, FPLat: 4},
		{Window: 64, MD: 60, CopyLat: 2},
		{Window: 64, MD: 60, AUWidth: 3},
		{Window: 64, MD: 60, DUWidth: 6},
		{Window: 64, MD: 60, Width: 8},
		{Window: 64, MD: 60, DispatchWidth: 2},
		{Window: 64, MD: 60, MemQueue: 7},
		{Window: 64, MD: 60, CollectESW: true},
		{Window: 64, MD: 60, HoldSendSlots: true},
		{Window: 64, MD: 60, Retire: RetireAtComplete}, // auto resolves to in-order
	}
	for _, kind := range []Kind{DM, SWSM} {
		bk, ok := base.CacheKey(kind)
		if !ok {
			t.Fatalf("%v: base params must be cacheable", kind)
		}
		seen := map[string]int{bk: -1}
		for i, v := range variants {
			k, ok := v.CacheKey(kind)
			if !ok {
				t.Fatalf("%v variant %d: must be cacheable", kind, i)
			}
			if prev, dup := seen[k]; dup {
				t.Errorf("%v: variants %d and %d collide on %q", kind, prev, i, k)
			}
			seen[k] = i
		}
	}
}

func TestCacheKeyResolvesRetirePolicy(t *testing.T) {
	for _, kind := range []Kind{DM, SWSM} {
		p := Params{Window: 64, MD: 60}
		auto, _ := p.CacheKey(kind)
		p.Retire = RetireInOrder
		forced, _ := p.CacheKey(kind)
		if auto != forced {
			t.Errorf("%v: auto must alias forced in-order: %q vs %q", kind, auto, forced)
		}
		if !strings.Contains(auto, "ret=in-order") {
			t.Errorf("%v: auto key must record the resolved in-order policy: %q", kind, auto)
		}
		p.Retire = RetireAtComplete
		atc, _ := p.CacheKey(kind)
		if !strings.Contains(atc, "ret=at-complete") || atc == auto {
			t.Errorf("%v: at-complete must be recorded distinctly: %q", kind, atc)
		}
	}
}

func TestFingerprintTracksContent(t *testing.T) {
	build := func(n int) *Suite {
		b := kernel.New("fp")
		arr := b.Array("a", 4*n, 8)
		for i := 0; i < n; i++ {
			base := b.Int()
			b.Store(arr, 2*n+i, b.FP(b.Load(arr, i, base)), base)
		}
		s, err := NewSuite(b.MustTrace(), partition.Classic)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a1, a2, b := build(16), build(16), build(17)
	if a1.Fingerprint() != a2.Fingerprint() {
		t.Error("identical content must fingerprint identically")
	}
	if a1.Fingerprint() == b.Fingerprint() {
		t.Error("different content must fingerprint differently")
	}
	if a1.Fingerprint() != a1.Fingerprint() {
		t.Error("fingerprint must be stable per suite")
	}
}
