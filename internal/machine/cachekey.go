package machine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"daesim/internal/engine"
)

// CacheKey returns a canonical, process-stable encoding of (kind, p) for
// persistent result caches, and reports whether the point is cacheable at
// all. Points carrying a custom Params.Mem are not: a MemModel is
// arbitrary stateful code with no stable identity.
//
// The encoding writes every Params field explicitly, raw (unresolved),
// except the retirement policy, which is recorded resolved so a change
// to the machines' default accounting changes the key.
// TestCacheKeyCoversAllParams pins the field count: adding a Params field
// without extending this encoding is a build-time-visible bug, not a
// silent stale-cache hazard.
func (p Params) CacheKey(kind Kind) (string, bool) {
	if p.Mem != nil {
		return "", false
	}
	retire := RetireAtComplete
	if p.retireInOrder() {
		retire = RetireInOrder
	}
	return fmt.Sprintf("k=%s w=%d auw=%d duw=%d md=%d fp=%d cp=%d aw=%d dw=%d sw=%d dpw=%d mq=%d esw=%t hold=%t ret=%s",
		kind, p.Window, p.AUWindow, p.DUWindow, p.MD, p.FPLat, p.CopyLat,
		p.AUWidth, p.DUWidth, p.Width, p.DispatchWidth, p.MemQueue,
		p.CollectESW, p.HoldSendSlots, retire), true
}

// Fingerprint returns a content hash of the suite's lowered programs —
// the workload identity for persistent result caches. It covers every
// field of every op of both machines' programs plus the trace length, so
// it changes when a workload model is recalibrated, when its scale
// changes, when the partition policy assigns ops differently, or when a
// lowering emits different code — exactly the events that must invalidate
// cached results for the suite. Computed once per Suite (hashing ~10 MB
// of op stream costs a few ms; sweeps ask for it per point).
func (s *Suite) Fingerprint() string {
	s.fpOnce.Do(func() {
		h := sha256.New()
		var buf [8]byte
		wInt := func(x int64) {
			binary.LittleEndian.PutUint64(buf[:], uint64(x))
			h.Write(buf[:])
		}
		hashProgram := func(p *engine.Program) {
			h.Write([]byte(p.Name))
			wInt(int64(p.NumUnits))
			wInt(int64(p.TraceLen))
			wInt(int64(len(p.Ops)))
			for i := range p.Ops {
				op := &p.Ops[i]
				wInt(int64(op.Kind))
				wInt(int64(op.Unit))
				wInt(int64(op.MemSrc))
				wInt(int64(op.Addr))
				wInt(int64(op.Orig))
				wInt(int64(len(op.Srcs)))
				for _, s := range op.Srcs {
					wInt(int64(s))
				}
			}
		}
		hashProgram(s.DM.Program)
		hashProgram(s.SWSM)
		s.fp = hex.EncodeToString(h.Sum(nil))
	})
	return s.fp
}
